"""The ``Communicator`` interface of the simulated distributed machine.

The interface is a deliberately small subset of MPI, modelled on mpi4py's
lower-case (pickle-based) API because the distributed string sorting
algorithms only need

* point-to-point ``send`` / ``recv`` / ``sendrecv``,
* ``barrier``,
* rooted collectives ``bcast``, ``gather``, ``scatter``, ``reduce``,
* symmetric collectives ``allgather``, ``allreduce``, ``alltoall`` (the
  personalised, "v" flavour: one Python object per destination).

Algorithms are written as ordinary per-rank functions receiving a
``Communicator`` — the same SPMD style an mpi4py program would use — so a
future port to real MPI only has to swap the communicator implementation.

Every operation takes the actual payload *and* reports wire sizes to the
:class:`repro.net.metrics.TrafficMeter`, which is how the benchmark harness
obtains the exact "bytes sent per string" numbers of Figures 4 and 5.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, List, Optional, Sequence

__all__ = ["Communicator", "ReduceOp"]


class ReduceOp:
    """Named reduction operators for :meth:`Communicator.reduce`/``allreduce``."""

    SUM = "sum"
    MIN = "min"
    MAX = "max"

    _FUNCS = {
        "sum": lambda xs: sum(xs),
        "min": lambda xs: min(xs),
        "max": lambda xs: max(xs),
    }

    @classmethod
    def apply(cls, op: str, values: Sequence[Any]) -> Any:
        if callable(op):
            # custom associative reduction function over the list of values
            return op(values)
        try:
            return cls._FUNCS[op](values)
        except KeyError:
            raise ValueError(f"unknown reduction op {op!r}") from None


class Communicator:
    """Abstract SPMD communicator; see the module docstring for the contract.

    Subclasses must implement the ``_impl``-suffixed primitives; the public
    methods add argument validation and traffic accounting hooks shared by
    all backends.
    """

    # subclasses set these in __init__
    rank: int
    size: int

    # ------------------------------------------------------------------ identity
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} rank={self.rank} size={self.size}>"

    # ------------------------------------------------------------------ phases & work
    @contextmanager
    def phase(self, name: str):
        """Label all traffic issued inside the ``with`` block with ``name``."""
        previous = self.get_phase()
        self.set_phase(name)
        try:
            yield
        finally:
            self.set_phase(previous)

    def set_phase(self, name: str) -> None:  # pragma: no cover - trivial default
        """Set the current accounting phase (optional for backends)."""

    def get_phase(self) -> str:  # pragma: no cover - trivial default
        return "unlabelled"

    def record_local_work(self, chars: int, items: int = 0) -> None:
        """Report local character/string work for the modelled running time."""

    # ------------------------------------------------------------------ point-to-point
    def send(self, obj: Any, dest: int, tag: int = 0, nbytes: Optional[int] = None) -> None:
        """Send ``obj`` to rank ``dest``.

        ``nbytes`` overrides the wire-size estimate (used when the payload is
        an already-accounted composite).
        """
        raise NotImplementedError

    def recv(self, source: int, tag: int = 0) -> Any:
        """Receive the next message from ``source`` with matching ``tag``."""
        raise NotImplementedError

    def sendrecv(
        self,
        obj: Any,
        peer: int,
        tag: int = 0,
        nbytes: Optional[int] = None,
    ) -> Any:
        """Exchange messages with ``peer`` (both sides must call this)."""
        raise NotImplementedError

    # ------------------------------------------------------------------ collectives
    def barrier(self) -> None:
        raise NotImplementedError

    def bcast(self, obj: Any, root: int = 0, nbytes: Optional[int] = None) -> Any:
        raise NotImplementedError

    def gather(self, obj: Any, root: int = 0, nbytes: Optional[int] = None) -> Optional[List[Any]]:
        raise NotImplementedError

    def scatter(self, objs: Optional[Sequence[Any]], root: int = 0) -> Any:
        raise NotImplementedError

    def allgather(self, obj: Any, nbytes: Optional[int] = None) -> List[Any]:
        raise NotImplementedError

    def alltoall(
        self, objs: Sequence[Any], nbytes: Optional[Sequence[int]] = None,
        hypercube: bool = False,
    ) -> List[Any]:
        """Personalised all-to-all: ``objs[d]`` goes to rank ``d``.

        ``hypercube=True`` only changes the *cost accounting* (latency
        ``alpha log p`` at the price of a ``log p`` volume factor, see
        Theorem 6's discussion); delivery semantics are identical.
        """
        raise NotImplementedError

    def reduce(self, value: Any, op: str = ReduceOp.SUM, root: int = 0) -> Any:
        raise NotImplementedError

    def allreduce(self, value: Any, op: str = ReduceOp.SUM) -> Any:
        raise NotImplementedError

    # ------------------------------------------------------------------ conveniences
    def is_root(self, root: int = 0) -> bool:
        return self.rank == root

    def other_ranks(self) -> List[int]:
        return [r for r in range(self.size) if r != self.rank]


RankFunction = Callable[..., Any]
