"""Observability pins: tracing invariants and the barrier attribution fix.

Four contracts from ``docs/OBSERVABILITY.md`` are held here:

* **zero-cost off** — untraced runs carry no timeline/metrics attachments
  and their byte accounting is bit-identical to traced runs;
* **barrier attribution** — a straggler's idle time at ``comm.barrier()``
  lands in the barrier account (``TrafficReport.barrier_wait_seconds``
  plus ``barrier`` sub-spans), *not* in the surrounding stage's exclusive
  seconds — the regression this file exists to pin;
* **engine parity** — both backends produce the same span structure for
  the same program (timestamps differ, shapes must not);
* **exportability** — every traced run renders to a schema-valid
  Chrome-trace document and a non-empty waterfall.
"""

from __future__ import annotations

import time

import pytest

from repro.mpi import run_spmd
from repro.obs import (
    Recorder,
    chrome_trace,
    render_waterfall,
    resolve_trace,
    validate_chrome_trace,
)
from repro.obs.timeline import Timeline
from repro.session import Cluster, MSSpec

STRAGGLE = 0.15  # seconds rank 0 dawdles before the barrier
SLACK = 0.5  # fraction of STRAGGLE the assertions tolerate


def _phased_exchange(comm):
    """A tiny two-phase program with real sends, usable on any engine."""
    comm.set_phase("local-sort")
    payload = bytes([comm.rank]) * 64
    comm.set_phase("exchange")
    peer = comm.size - 1 - comm.rank
    if peer != comm.rank:
        got = comm.sendrecv(payload, peer)
    else:
        got = payload
    comm.barrier()
    return len(got)


def _straggler(comm):
    """Rank 0 sleeps inside phase ``merge``; everyone meets at a barrier."""
    comm.set_phase("merge")
    if comm.rank == 0:
        time.sleep(STRAGGLE)
    comm.barrier()
    comm.set_phase("wrap-up")
    return comm.rank


class TestRecorder:
    def test_ring_buffer_drops_oldest(self):
        rec = Recorder(rank=0, capacity=4)
        for i in range(10):
            rec.instant(f"ev{i}")
        assert rec.dropped == 6
        assert rec.events_recorded == 10
        names = [e[2] for e in rec.events()]
        assert names == ["ev6", "ev7", "ev8", "ev9"]

    def test_export_is_plain_data(self):
        rec = Recorder(rank=3, capacity=16)
        rec.phase("local-sort")
        rec.comm("send", peer=1, nbytes=42)
        rec.finish()
        doc = rec.export()
        assert doc["rank"] == 3
        assert doc["dropped"] == 0
        kinds = [e[0] for e in doc["events"]]
        assert kinds == ["phase", "comm", "finish"]

    def test_resolve_trace_precedence(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert resolve_trace(None) is False
        assert resolve_trace(True) is True
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert resolve_trace(None) is True
        # an explicit knob always beats the environment
        assert resolve_trace(False) is False
        monkeypatch.setenv("REPRO_TRACE", "0")
        assert resolve_trace(None) is False


class TestTracedRuns:
    def test_untraced_run_has_no_attachments(self, engine):
        _, report = run_spmd(2, _phased_exchange)
        assert report.timeline is None
        assert report.metrics is None

    def test_traced_run_attaches_timeline(self, engine):
        results, report = run_spmd(4, _phased_exchange, trace=True)
        tl = report.timeline
        assert isinstance(tl, Timeline)
        assert tl.num_pes == 4
        assert tl.meta["engine"] == engine
        # every rank contributes phase spans for both stages
        for rank in range(4):
            names = {s.name for s in tl.iter_spans(cat="phase", rank=rank)}
            assert {"local-sort", "exchange"} <= names
        # comm instants record the sendrecv traffic
        comms = list(tl.instants)
        assert any(i.cat == "comm" for i in comms)

    def test_accounting_identical_on_and_off(self, engine):
        results_off, rep_off = run_spmd(4, _phased_exchange)
        results_on, rep_on = run_spmd(4, _phased_exchange, trace=True)
        assert results_on == results_off
        assert rep_on.bytes_sent_per_pe == rep_off.bytes_sent_per_pe
        assert rep_on.messages_per_pe == rep_off.messages_per_pe
        assert dict(rep_on.phase_bytes) == dict(rep_off.phase_bytes)

    def test_chrome_trace_is_schema_valid(self, engine):
        _, report = run_spmd(3, _phased_exchange, trace=True)
        doc = chrome_trace(report.timeline)
        assert validate_chrome_trace(doc) == []
        assert doc["otherData"]["num_pes"] == 3

    def test_waterfall_renders(self, engine):
        _, report = run_spmd(2, _phased_exchange, trace=True)
        art = render_waterfall(report.timeline)
        assert "pe   0" in art and "pe   1" in art
        assert "local-sort" in art


class TestBarrierAttribution:
    """The satellite regression: straggler wait must not inflate its stage."""

    def test_wait_metered_even_untraced(self, engine):
        _, report = run_spmd(2, _straggler)
        # rank 1 reaches the barrier ~immediately and waits out rank 0's nap
        assert report.barrier_wait_seconds["merge"] >= STRAGGLE * SLACK

    def test_wait_excluded_from_stage_seconds(self, engine):
        _, report = run_spmd(2, _straggler, trace=True)
        tl = report.timeline
        # the waiting rank's merge time, barrier-exclusive, is nearly zero …
        excl = tl.phase_seconds(name="merge", rank=1, exclusive=True)
        assert excl < STRAGGLE * SLACK
        # … while the naive wall-clock reading is straggler-inflated
        wall = tl.phase_seconds(name="merge", rank=1, exclusive=False)
        assert wall >= STRAGGLE * SLACK
        # and the difference shows up as an explicit barrier span
        assert tl.barrier_seconds(rank=1) >= STRAGGLE * SLACK
        # report-level account agrees with the timeline's barrier spans
        assert report.barrier_wait_seconds["merge"] == pytest.approx(
            tl.barrier_seconds(), rel=0.5
        )

    def test_straggler_rank_barely_waits(self, engine):
        _, report = run_spmd(2, _straggler, trace=True)
        # rank 0 arrives last, so its own barrier wait is tiny
        assert report.timeline.barrier_seconds(rank=0) < STRAGGLE * SLACK


class TestClusterTrace:
    def test_traced_sort_attaches_metrics(self, engine):
        import random

        rng = random.Random(7)
        data = [bytes(rng.choices(b"abcdef", k=12)) for _ in range(300)]
        with Cluster(num_pes=4, trace=True) as cluster:
            result = cluster.sort(data, MSSpec(), check=True)
        report = result.report
        assert report.timeline is not None
        snap = report.metrics
        assert snap is not None
        # the derived families named in docs/OBSERVABILITY.md exist
        assert "repro_stage_seconds_total" in snap.names()
        assert "repro_stage_strings_per_second" in snap.names()
        assert "repro_stage_peak_rss_bytes" in snap.names()
        merge_rss = snap.value("repro_stage_peak_rss_bytes", stage="merge")
        assert merge_rss is not None and merge_rss > 0
        # prometheus rendering is well-formed enough to re-read
        text = snap.render_prometheus()
        assert "# TYPE repro_stage_seconds_total counter" in text

    def test_sort_outputs_identical_on_and_off(self, engine):
        import random

        rng = random.Random(11)
        data = [bytes(rng.choices(b"xyz", k=10)) for _ in range(200)]
        with Cluster(num_pes=4) as plain:
            baseline = plain.sort(data, MSSpec())
        with Cluster(num_pes=4, trace=True) as traced:
            observed = traced.sort(data, MSSpec())
        assert observed.sorted_strings == baseline.sorted_strings
        assert (
            observed.report.total_bytes_sent == baseline.report.total_bytes_sent
        )
