"""Simulated MPI: communicator interface, wire-size accounting, SPMD engine."""

from .comm import Communicator, ReduceOp, Request, waitall, waitany
from .engine import ThreadComm, SpmdError, run_spmd
from .serialization import wire_size, varint_size, WireSized

__all__ = [
    "Communicator",
    "ReduceOp",
    "Request",
    "waitall",
    "waitany",
    "ThreadComm",
    "SpmdError",
    "run_spmd",
    "wire_size",
    "varint_size",
    "WireSized",
]
