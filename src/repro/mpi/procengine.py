"""Real-parallel SPMD execution: one OS process per rank.

This is the first engine that escapes the GIL: the same rank programs the
thread engine runs are forked into real processes, so local sorting and
merging genuinely run in parallel.  It registers under the name
``"processes"`` (``Cluster(engine="processes")``, ``REPRO_ENGINE=processes``
or the CLI's ``--engine processes``) and implements the full
:class:`~repro.mpi.comm.Communicator` protocol:

* **data plane** — a full mesh of duplex pipes carries small control
  frames; bulk payloads (packed buckets, LCP arrays) ship as zero-copy
  :mod:`multiprocessing.shared_memory` views via :mod:`repro.mpi.shm`;
* **collectives** — built on a gather-to-rank-0 board exchange with
  explicit collective sequence numbers, reproducing the thread engine's
  write/barrier/read semantics (and, because all accounting lives in the
  shared :class:`~repro.mpi.engine.MeteredComm` base, recording *exactly*
  the same meter events);
* **fault plans** — the PR 7 envelope/retransmit framing injects
  identically on both backends.  The sender always ships clean sequenced
  envelopes; the *receiver* (which forked its own copy of the engine's
  deterministic :class:`~repro.faults.inject.FaultInjector`) simulates the
  sender-side injection decision on arrival, so every injector channel is
  advanced by exactly one process and the parent can merge the forked
  schedule states back losslessly after the run.

Workers are forked per run: rank programs, closures and the session's
process-global toggles (``REPRO_PACKED`` etc.) are inherited, never
pickled.  The parent absorbs each worker's full-size traffic meter into the
caller's meter, merges injector state, joins the children and sweeps any
shared-memory debris — :meth:`ProcessEngine.shutdown` is idempotent and the
leak-check fixture in ``tests/conftest.py`` holds the engine to that
contract.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import os
import threading
import time
from collections import deque
from multiprocessing import connection as mp_connection
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

from ..faults.errors import LostMessageError
from ..faults.inject import FaultInjector
from ..faults.plan import FaultPlan
from ..faults.wire import Envelope, envelope_overhead
from ..net.metrics import TrafficMeter, TrafficReport
from ..obs.recorder import DEFAULT_CAPACITY, Recorder, resolve_trace
from ..obs.timeline import Timeline
from . import shm
from .comm import Request
from .engine import (
    MeteredComm,
    SpmdError,
    _FaultChannel,
    _SendRequest,
    default_timeout,
)
from .serialization import payload_checksum, wire_size

__all__ = ["ProcComm", "ProcessEngine", "process_engine_available"]

_PROBE: Optional[Tuple[bool, str]] = None


def process_engine_available() -> Tuple[bool, str]:
    """Whether this platform can run the processes engine: ``(ok, reason)``.

    Requires the ``fork`` start method (rank programs are closures and the
    injector must be inherited, not pickled) and working POSIX shared
    memory.  The conformance fixtures consult this to skip ``processes``
    test cells gracefully on platforms that lack either.
    """
    global _PROBE
    if _PROBE is None:
        if "fork" not in mp.get_all_start_methods():
            _PROBE = (False, "platform lacks the fork start method")
        else:
            _PROBE = shm.shared_memory_available()
    return _PROBE


class _ProcRecvRequest(Request):
    """Request handle of a :meth:`ProcComm.irecv`.

    The pipe twin of the thread engine's ``_RecvRequest``: outstanding
    receives from one source match incoming frames in *posting* order (the
    MPI non-overtaking rule), the deadlock clock starts at post time, and
    in fault mode every poll runs the backoff drop detector.
    """

    __slots__ = ("_comm", "source", "tag", "_done", "_value", "_posted")

    def __init__(self, comm: "ProcComm", source: int, tag: int):
        self._comm = comm
        self.source = source
        self.tag = tag
        self._done = False
        self._value: Any = None
        self._posted = time.monotonic()

    def _complete(self, got_tag: int, obj: Any) -> None:
        if got_tag != self.tag:
            raise SpmdError(
                f"rank {self._comm.rank}: tag mismatch receiving from "
                f"{self.source}: expected {self.tag}, got {got_tag} "
                "(SPMD ordering violated)"
            )
        self._value = obj
        self._done = True

    def test(self) -> bool:
        """Poll: drain the source pipe, then report completion or timeout."""
        if self._done:
            return True
        comm = self._comm
        comm._check_abort(f"a message from rank {self.source}")
        comm._match_pending_recvs(self.source)
        if self._done:
            return True
        if comm._fault:
            comm._maybe_backoff_pull(self.source)
            comm._match_pending_recvs(self.source)
            if self._done:
                return True
        if not comm._fault and self.source in comm._dead:
            # the peer exited and every frame it ever sent was consumed:
            # this message can no longer arrive (in fault mode recovery may
            # still deliver from the local buffer, so the timeout decides)
            exc = SpmdError(
                f"rank {comm.rank}: lost the connection to rank "
                f"{self.source} while a receive was pending"
            )
            comm._fail(exc)
            raise exc
        if time.monotonic() - self._posted > comm._timeout:
            message = (
                f"rank {comm.rank}: timed out waiting for a message "
                f"from rank {self.source} (tag {self.tag})"
            )
            exc: BaseException = (
                LostMessageError(message) if comm._fault else SpmdError(message)
            )
            comm._fail(exc)
            raise SpmdError(
                f"rank {comm.rank}: recv timeout from rank {self.source}"
            )
        return False

    def wait(self) -> Any:
        """Block until the message arrives; returns the payload.

        Sleeps in ``Connection.poll`` on the source's pipe (idle workers
        sleep in the OS instead of spinning); ``test()`` still runs every
        slice for abort/deadlock detection and fault recovery.
        """
        comm = self._comm
        while not self.test():
            if self.source != comm.rank and self.source not in comm._dead:
                comm._service(self.source, 0.02)
            else:  # self-receives and dead peers have nothing to poll
                time.sleep(0.0005)
        return self._value


class ProcComm(MeteredComm):
    """Communicator of one rank process (pipes + shared-memory payloads)."""

    def __init__(
        self,
        rank: int,
        size: int,
        peer_conns: Dict[int, Any],
        error_event: Any,
        meter: TrafficMeter,
        injector: Optional[FaultInjector],
        timeout: float,
        shm_prefix: str,
        shm_threshold: int,
        recorder: Optional[Recorder] = None,
    ):
        super().__init__(rank, size, fault=injector is not None, recorder=recorder)
        self._peer_conns = peer_conns
        self._error_event = error_event
        self._meter_obj = meter
        self._injector_obj = injector
        self._timeout = timeout
        self._shm_prefix = shm_prefix
        self._shm_threshold = shm_threshold
        self._shm_counter = 0
        # zero-copy segments opened on receive; closed at teardown
        self._segments: List[Any] = []
        # control plane: per-source stash of collective steps, by sequence
        self._coll_seq = 0
        self._coll_stash: Dict[int, Dict[int, Any]] = {}
        # fault-free p2p inbox (fault mode uses MeteredComm's verified inbox)
        self._raw_inbox: Dict[int, Deque[Tuple[int, Any]]] = {}
        # peers whose pipe reached EOF (they exited; all frames consumed)
        self._dead: set = set()
        # fault mode: sender-side sequence numbers and receiver-side
        # recovery buffers / delay pens (the receiver simulates injection)
        self._send_seq: Dict[int, int] = {}
        self._channels: Dict[int, _FaultChannel] = {}
        self._delay_pens: Dict[int, List[List[Any]]] = {}

    # ------------------------------------------------------------------ engine hooks
    @property
    def _meter(self) -> TrafficMeter:
        """This worker's full-size meter (absorbed by the parent afterwards)."""
        return self._meter_obj

    @property
    def _injector(self) -> Optional[FaultInjector]:
        """The fork-inherited copy of the engine's fault injector."""
        return self._injector_obj

    def _fail(self, exc: BaseException) -> None:
        """Abort the whole run: flag the shared error event and let the
        exception propagate out of this worker."""
        self._error_event.set()

    def _recovery_channel(self, source: int) -> _FaultChannel:
        """Receiver-local retransmit buffer of the ``source -> me`` channel.

        Plays the role of the thread engine's shared sender-side buffer:
        every arriving envelope is stored *before* the injection verdict is
        simulated, so recovery pulls always find the clean copy locally.
        """
        ch = self._channels.get(source)
        if ch is None:
            ch = self._channels[source] = _FaultChannel()
        return ch

    def _check_abort(self, what: str) -> None:
        """Raise :class:`SpmdError` if another rank aborted the run."""
        if self._error_event.is_set():
            raise SpmdError(
                f"rank {self.rank}: SPMD run aborted while waiting for {what}"
            )

    # ------------------------------------------------------------------ low-level sync
    def _barrier_wait(self) -> None:
        """Synchronise all ranks via a zero-payload board exchange."""
        self._board_exchange(None)

    def _board_exchange(self, contribution: Any) -> List[Any]:
        """All ranks contribute one object and observe everyone's contribution.

        Gather-to-rank-0 then redistribute, with an explicit collective
        sequence number per step: SPMD programs issue collectives in the
        same order on every rank, so a mismatched sequence number is
        detected as a violation instead of silently crossing wires.  Each
        rank's own slot travels as ``None`` and is spliced back locally
        (its own contribution never needs to round-trip).
        """
        seq = self._coll_seq
        self._coll_seq += 1
        if self.size == 1:
            return [contribution]
        if self.rank == 0:
            board: List[Any] = [None] * self.size
            board[0] = contribution
            for src in range(1, self.size):
                board[src] = self._await_coll(src, seq)
            for dst in range(1, self.size):
                out = list(board)
                out[dst] = None
                self._send_frame(dst, ("coll", seq, out))
            return board
        self._send_frame(0, ("coll", seq, contribution))
        board = list(self._await_coll(0, seq))
        board[self.rank] = contribution
        return board

    def _await_coll(self, src: int, seq: int) -> Any:
        """Wait for collective step ``seq`` from ``src`` (deadlock-clocked)."""
        stash = self._coll_stash.setdefault(src, {})
        deadline = time.monotonic() + self._timeout
        while seq not in stash:
            self._check_abort(f"collective step {seq} from rank {src}")
            if not self._service(src, 0.05):
                if src in self._dead:
                    # the peer exited without contributing this step: a
                    # collective it should have joined can never complete
                    exc = SpmdError(
                        f"rank {self.rank}: lost rank {src} before "
                        f"collective step {seq}"
                    )
                    self._fail(exc)
                    raise exc
                if time.monotonic() > deadline:
                    exc = SpmdError(
                        f"rank {self.rank}: timed out in a collective "
                        f"waiting for rank {src} (step {seq})"
                    )
                    self._fail(exc)
                    raise exc
        return stash.pop(seq)

    # ------------------------------------------------------------------ frame transport
    def _send_frame(self, dest: int, frame: Tuple[Any, ...]) -> None:
        """Ship one frame to ``dest`` and count the real transported bytes."""
        self._shm_counter += 1
        name = f"{self._shm_prefix}-{self.rank}-{self._shm_counter}"
        blob, shm_bytes = shm.dumps(
            frame, segment_name=name, threshold=self._shm_threshold
        )
        try:
            self._peer_conns[dest].send_bytes(blob)
        except (BrokenPipeError, OSError):
            # the receiver is gone; if a segment was created for this frame
            # nobody will ever unlink it, so reclaim it here
            if shm_bytes:
                shm.sweep_segments(name)
            self._check_abort(f"rank {dest} (its pipe closed)")
            # no abort flagged: the peer finished its program and closed
            # its end.  A frame it never posted a matching receive for is
            # dropped silently — the thread engine leaves such messages in
            # a queue nobody reads, and any genuinely missing data still
            # fails on the *receiving* side of some later operation
            self._dead.add(dest)
            return
        self._meter_obj.record_transport(self.rank, len(blob) + shm_bytes)

    def _service(self, src: int, timeout: float) -> bool:
        """Receive whatever ``src``'s pipe holds (waiting up to ``timeout``).

        Returns whether at least one frame was processed.  Frames are
        dispatched by kind: collective steps to the sequence stash,
        point-to-point payloads to the (verified, in fault mode) inbox.
        """
        if src in self._dead:
            return False
        conn = self._peer_conns[src]
        got = False
        try:
            if not conn.poll(timeout):
                return False
            self._dispatch(src, conn.recv_bytes())
            got = True
            while conn.poll(0):
                self._dispatch(src, conn.recv_bytes())
        except (EOFError, OSError):
            # EOF is not an error *here*: a finished peer closes its end the
            # moment its last frame is buffered (and EOF makes poll() report
            # readable), so every buffered frame has been consumed by now.
            # The channel is marked dead; whoever still NEEDS a frame from
            # this peer decides that it is a failure (_await_coll, the
            # pending-receive poll) — whoever already has its data carries on.
            self._dead.add(src)
        return got

    def _dispatch(self, src: int, blob: bytes) -> None:
        """Decode one frame from ``src`` and route it to the right inbox."""
        obj, segment = shm.loads(blob)
        if segment is not None:
            self._segments.append(segment)
        kind = obj[0]
        if kind == "coll":
            _, seq, payload = obj
            self._coll_stash.setdefault(src, {})[seq] = payload
        elif kind == "msg":
            _, tag, payload = obj
            self._raw_inbox.setdefault(src, deque()).append((tag, payload))
        elif kind == "fmsg":
            _, seq, tag, crc, env_bytes, sender_phase, payload = obj
            self._arrive(src, seq, tag, crc, env_bytes, sender_phase, payload)
        else:  # pragma: no cover - wire corruption would be a repo bug
            raise SpmdError(
                f"rank {self.rank}: unknown frame kind {kind!r} from rank {src}"
            )

    # ------------------------------------------------------------------ point-to-point
    def send(self, obj: Any, dest: int, tag: int = 0, nbytes: Optional[int] = None) -> None:
        """Ship ``obj`` to ``dest`` and account its simulated wire size.

        With a fault plan installed the payload is framed in a sequenced,
        CRC-sealed envelope exactly like the thread engine; self-sends
        deliver locally without touching a pipe.
        """
        if not 0 <= dest < self.size:
            raise ValueError(f"invalid destination rank {dest}")
        size = wire_size(obj) if nbytes is None else nbytes
        rec = self._recorder
        if rec is not None:
            rec.comm("send", dest, size)
        if self._fault:
            self._fault_send(obj, dest, tag, size)
            return
        self._meter_obj.record_send(self.rank, dest, size)
        if dest == self.rank:
            self._raw_inbox.setdefault(dest, deque()).append((tag, obj))
            return
        self._send_frame(dest, ("msg", tag, obj))

    def _fault_send(self, obj: Any, dest: int, tag: int, size: int) -> None:
        """Fault-mode send: frame a clean sequenced envelope and ship it.

        Unlike the thread engine the sender never consults the injector —
        the wire really has to carry the message, so the *receiver*
        simulates the injection decision on arrival (:meth:`_arrive`) using
        its own forked copy of the deterministic injector.  The decision
        stream is identical because each injector channel is only ever
        advanced at the receiving rank.
        """
        seq = self._send_seq.get(dest, 0)
        self._send_seq[dest] = seq + 1
        crc = payload_checksum(obj)
        env_bytes = size + envelope_overhead(seq)
        self._meter_obj.record_send(self.rank, dest, env_bytes)
        if dest == self.rank:
            self._arrive(self.rank, seq, tag, crc, env_bytes, self._phase, obj)
            return
        self._send_frame(dest, ("fmsg", seq, tag, crc, env_bytes, self._phase, obj))

    def _arrive(
        self,
        source: int,
        seq: int,
        tag: int,
        crc: int,
        env_bytes: int,
        sender_phase: str,
        payload: Any,
    ) -> None:
        """Process one arrived envelope, simulating sender-side injection.

        Mirrors ``ThreadComm._fault_send``'s order of operations exactly —
        store the clean envelope in the recovery buffer first, apply the
        injection verdict, tick the delay pen once per arrival, then pen a
        newly delayed envelope — so the fault counters and the recovery
        schedule replay bit-identically against the thread engine.
        """
        ch = self._recovery_channel(source)
        env = Envelope(seq, tag, crc, payload)
        with ch.lock:
            ch.unacked[seq] = (env, env_bytes)
        meter = self._meter_obj
        action = None
        if source != self.rank and self._injector_obj is not None:
            action = self._injector_obj.on_send(source, self.rank, sender_phase)
        if action is None:
            self._accept(source, env)
        elif action.kind == "drop":
            # withheld; recovery pulls it from the local buffer
            meter.record_fault_injected(source)
        elif action.kind == "duplicate":
            meter.record_fault_injected(source)
            self._accept(source, env)
            # the duplicate costs wire bytes but is not origin volume
            meter.record_retransmit(source, self.rank, env_bytes)
            self._accept(source, Envelope(seq, tag, crc, payload))
        elif action.kind == "corrupt":
            meter.record_fault_injected(source)
            # tamper the envelope's seal; the clean copy stays buffered
            self._accept(source, Envelope(seq, tag, crc ^ action.mask, payload))
        elif action.kind == "delay":
            meter.record_fault_injected(source)
        else:  # pragma: no cover - injector only emits message kinds here
            self._accept(source, env)
        # this arrival is one overtaking event: held envelopes tick AFTER
        # the current one was handled and BEFORE the current one may be
        # penned (a held message must not tick at its own arrival)
        self._tick_delay(source)
        if action is not None and action.kind == "delay":
            self._delay_pens.setdefault(source, []).append(
                [action.delay_messages, env]
            )

    def _tick_delay(self, source: int) -> None:
        """Tick ``source``'s delay pen; accept envelopes fully overtaken."""
        pens = self._delay_pens.get(source)
        if not pens:
            return
        ripe: List[Envelope] = []
        remaining: List[List[Any]] = []
        for entry in pens:
            entry[0] -= 1
            if entry[0] <= 0:
                ripe.append(entry[1])
            else:
                remaining.append(entry)
        self._delay_pens[source] = remaining
        for env in ripe:
            self._accept(source, env)

    # ------------------------------------------------------------------ non-blocking
    def isend(
        self, obj: Any, dest: int, tag: int = 0, nbytes: Optional[int] = None
    ) -> Request:
        """Non-blocking send; completes eagerly (pipes buffer the frame)."""
        self.send(obj, dest, tag, nbytes)
        return _SendRequest()

    def irecv(self, source: int, tag: int = 0) -> Request:
        """Post a non-blocking receive; requests match frames in posting order."""
        if not 0 <= source < self.size:
            raise ValueError(f"invalid source rank {source}")
        request = _ProcRecvRequest(self, source, tag)
        self._pending_recvs.setdefault(source, deque()).append(request)
        return request

    def _match_pending_recvs(self, source: int) -> None:
        """Assign arrived frames from ``source`` to requests in posting order."""
        pending = self._pending_recvs.get(source)
        if not pending:
            return
        if source != self.rank:
            self._service(source, 0)
        inbox = (
            self._inbox.get(source) if self._fault else self._raw_inbox.get(source)
        )
        while pending and inbox:
            got_tag, obj = inbox.popleft()
            pending.popleft()._complete(got_tag, obj)

    # ------------------------------------------------------------------ lifecycle
    def _teardown(self) -> None:
        """Close zero-copy segments and pipes (end of the worker's life).

        Segments still referenced by live payload views refuse to close
        (``BufferError``); that is fine — the mapping dies with the process,
        and the names were already unlinked at receive time.
        """
        for seg in self._segments:
            try:
                seg.close()
            except BufferError:
                pass
        self._segments = []
        for conn in self._peer_conns.values():
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass


def _worker_main(
    rank: int,
    size: int,
    pair_conns: Dict[Tuple[int, int], Tuple[Any, Any]],
    child_ends: List[Any],
    error_event: Any,
    fn: Callable[..., Any],
    args_per_rank: Optional[Sequence[Tuple]],
    common_args: Tuple,
    injector: Optional[FaultInjector],
    timeout: float,
    shm_prefix: str,
    shm_threshold: int,
    trace: bool = False,
    trace_capacity: int = DEFAULT_CAPACITY,
) -> None:
    """Entry point of one forked rank worker.

    Runs ``fn(comm, *rank_args, *common_args)`` against a fresh
    :class:`ProcComm`, then reports ``(status, result_or_exc, report,
    injector_state, trace_export)`` to the parent over its private pipe.
    The worker's meter is full-size (it records explicit rank slots exactly
    like the thread engine's shared meter), so the parent's merge is exact;
    with tracing on, the rank's recorder ring rides the same pipe as a
    plain-data export and the parent rebuilds the aligned timeline
    (``time.monotonic`` is shared across forked processes).
    """
    peers: Dict[int, Any] = {}
    for (i, j), (ci, cj) in pair_conns.items():
        if rank == i:
            peers[j] = ci
            cj.close()
        elif rank == j:
            peers[i] = cj
            ci.close()
        else:
            ci.close()
            cj.close()
    for r, conn in enumerate(child_ends):
        if r != rank:
            conn.close()
    meter = TrafficMeter(size)
    recorder = Recorder(rank, capacity=trace_capacity) if trace else None
    comm = ProcComm(
        rank,
        size,
        peers,
        error_event,
        meter,
        injector,
        timeout,
        shm_prefix,
        shm_threshold,
        recorder=recorder,
    )
    status = "done"
    payload: Any = None
    try:
        rank_args = tuple(args_per_rank[rank]) if args_per_rank is not None else ()
        payload = fn(comm, *rank_args, *common_args)
    except SpmdError as exc:
        # secondary failure (another rank aborted first, or a local timeout
        # already recorded through _fail); still reported, parent picks the
        # primary cause
        status = "aborted"
        payload = exc
        error_event.set()
    except BaseException as exc:  # noqa: BLE001 - re-raised in the parent
        status = "failed"
        payload = exc
        error_event.set()
    report = meter.report()
    state = injector.export_state() if injector is not None else None
    if recorder is not None:
        recorder.finish()
    trace_export = recorder.export() if recorder is not None else None
    out = child_ends[rank]
    try:
        out.send((status, payload, report, state, trace_export))
    except Exception:
        try:
            fallback = SpmdError(
                f"rank {rank}: result of type "
                f"{type(payload).__name__} could not be pickled"
            )
            out.send(("failed", fallback, report, state, trace_export))
        except Exception:  # pragma: no cover - parent sees EOF instead
            pass
    comm._teardown()
    out.close()


_ENGINE_IDS = itertools.count()


class ProcessEngine:
    """A real-parallel machine: one forked OS process per simulated PE.

    The multiprocessing counterpart of :class:`~repro.mpi.engine.ThreadEngine`
    with the same engine surface (``run``, ``shutdown``, ``_injector``,
    ``runs_completed``) registered as ``"processes"``.  Workers are forked
    per run — fork (required; see :func:`process_engine_available`) lets
    rank programs be arbitrary closures and carries the session's
    process-global toggles and the engine's fault injector into the workers
    without pickling.  Conformance with the thread engine — bit-identical
    outputs, LCPs, origin wire bytes and config hashes — is pinned by
    ``tests/test_engine_conformance.py``.
    """

    #: registry name of this backend
    name = "processes"

    def __init__(
        self,
        num_pes: int,
        timeout: Optional[float] = None,
        fault_plan: Optional[FaultPlan] = None,
        shm_threshold: Optional[int] = None,
        trace: Optional[bool] = None,
        trace_capacity: int = DEFAULT_CAPACITY,
    ):
        ok, reason = process_engine_available()
        if not ok:
            raise RuntimeError(f"the processes engine cannot run here: {reason}")
        if num_pes <= 0:
            raise ValueError("num_pes must be positive")
        self.num_pes = num_pes
        self.timeout = default_timeout() if timeout is None else timeout
        #: whether runs record per-rank trace timelines (explicit flag >
        #: ``REPRO_TRACE`` env > off); see :mod:`repro.obs`
        self.trace = resolve_trace(trace)
        self.trace_capacity = trace_capacity
        #: the installed chaos schedule, or None for the zero-overhead path
        self.fault_plan = fault_plan
        # like the thread engine, the injector outlives individual runs so
        # single-shot rules stay consumed across a session-level retry; the
        # workers fork copies and the parent merges their state back
        self._injector: Optional[FaultInjector] = (
            FaultInjector(fault_plan) if fault_plan is not None else None
        )
        self._ctx = mp.get_context("fork")
        self._shm_threshold = (
            shm.SHM_THRESHOLD if shm_threshold is None else shm_threshold
        )
        self._shm_prefix = f"reproshm-{os.getpid()}-{next(_ENGINE_IDS)}"
        self._run_seq = 0
        self._procs: List[Any] = []
        # one machine runs one SPMD program at a time (mirrors ThreadEngine)
        self._run_lock = threading.Lock()
        #: completed :meth:`run` calls (successful or not)
        self.runs_completed = 0
        #: runs that reused the engine's persistent state (the injector and
        #: the shared-memory namespace survive across runs; workers do not)
        self.state_reuses = 0

    def run(
        self,
        fn: Callable[..., Any],
        args_per_rank: Optional[Sequence[Tuple]] = None,
        common_args: Tuple = (),
        meter: Optional[TrafficMeter] = None,
        timeout: Optional[float] = None,
    ) -> Tuple[List[Any], TrafficReport]:
        """Run ``fn(comm, *rank_args, *common_args)`` on every PE process.

        Same contract as :meth:`ThreadEngine.run`: returns ``(results,
        report)`` with ``results[r]`` the return value of rank ``r``, or
        raises :class:`SpmdError` chaining the primary failure.  The
        caller's ``meter`` additionally receives the per-worker counters
        (exact element-wise merge) even when the run fails, so session-level
        retry accounting sees fault counters of failed attempts.
        """
        num_pes = self.num_pes
        if args_per_rank is not None and len(args_per_rank) != num_pes:
            raise ValueError("args_per_rank must have one entry per rank")
        meter = meter if meter is not None else TrafficMeter(num_pes)
        meter.engine = self.name
        with self._run_lock:
            return self._run_locked(
                fn, args_per_rank, common_args, meter,
                self.timeout if timeout is None else timeout,
            )

    def _run_locked(
        self,
        fn: Callable[..., Any],
        args_per_rank: Optional[Sequence[Tuple]],
        common_args: Tuple,
        meter: TrafficMeter,
        timeout: float,
    ) -> Tuple[List[Any], TrafficReport]:
        num_pes = self.num_pes
        self._run_seq += 1
        prefix = f"{self._shm_prefix}-r{self._run_seq}"
        # start the resource tracker pre-fork so all workers share one
        # ledger (create/attach/unlink of a segment then balance out)
        shm.ensure_tracker()
        pair_conns = {
            (i, j): self._ctx.Pipe(duplex=True)
            for i in range(num_pes)
            for j in range(i + 1, num_pes)
        }
        parent_ends: List[Any] = []
        child_ends: List[Any] = []
        for _ in range(num_pes):
            recv_end, send_end = self._ctx.Pipe(duplex=False)
            parent_ends.append(recv_end)
            child_ends.append(send_end)
        error_event = self._ctx.Event()
        procs = [
            self._ctx.Process(
                target=_worker_main,
                args=(
                    rank, num_pes, pair_conns, child_ends, error_event,
                    fn, args_per_rank, common_args, self._injector,
                    timeout, prefix, self._shm_threshold,
                    self.trace, self.trace_capacity,
                ),
                name=f"repro-pe-{rank}",
                daemon=True,
            )
            for rank in range(num_pes)
        ]
        self._procs = procs
        for proc in procs:
            proc.start()
        # the parent is not a rank: close its copies of the data plane
        for ci, cj in pair_conns.values():
            ci.close()
            cj.close()
        for conn in child_ends:
            conn.close()

        results: List[Any] = [None] * num_pes
        failures: List[Tuple[int, BaseException]] = []
        trace_exports: Dict[int, Dict[str, Any]] = {}
        pending: Dict[Any, int] = {conn: r for r, conn in enumerate(parent_ends)}
        deadline = time.monotonic() + timeout + 30.0
        while pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            ready = mp_connection.wait(list(pending), timeout=min(remaining, 1.0))
            for conn in ready:
                rank = pending.pop(conn)
                try:
                    status, payload, report, state, trace_export = conn.recv()
                except (EOFError, OSError):
                    error_event.set()
                    failures.append(
                        (rank, SpmdError(
                            f"rank {rank} worker died without reporting "
                            "(killed or crashed hard)"
                        ))
                    )
                    continue
                if report is not None:
                    meter.absorb(report)
                if state is not None and self._injector is not None:
                    self._injector.merge_state(state)
                if trace_export is not None:
                    trace_exports[rank] = trace_export
                if status == "done":
                    results[rank] = payload
                else:
                    failures.append((rank, payload))
        if pending:
            error_event.set()
            for conn, rank in pending.items():
                failures.append(
                    (rank, SpmdError(
                        f"rank {rank} did not report within the deadlock "
                        f"deadline ({timeout:.0f}s + grace)"
                    ))
                )
        for proc in procs:
            proc.join(timeout=10.0)
        stragglers = [p for p in procs if p.is_alive()]
        for proc in stragglers:
            proc.terminate()
        for proc in stragglers:
            proc.join(timeout=5.0)
        for conn in parent_ends:
            conn.close()
        shm.sweep_segments(prefix)
        self._procs = []
        self.runs_completed += 1
        if self.runs_completed > 1:
            self.state_reuses += 1
        if failures:
            failures.sort(key=lambda item: item[0])
            primary = next(
                (exc for _, exc in failures if not isinstance(exc, SpmdError)),
                failures[0][1],
            )
            raise SpmdError(
                f"SPMD run on {num_pes} PEs failed: {primary!r}"
            ) from primary
        report = meter.report()
        if trace_exports:
            # rank-offset alignment happens inside from_exports: monotonic
            # timestamps are boot-relative and shared across forked workers,
            # so the earliest event over all ranks re-bases the run clock
            report.timeline = Timeline.from_exports(
                [trace_exports[r] for r in sorted(trace_exports)], num_pes
            )
            report.timeline.meta["engine"] = self.name
        return results, report

    def shutdown(self) -> None:
        """Terminate stray workers and sweep shared-memory debris; idempotent.

        Normal runs leave nothing behind — workers are joined and segments
        unlinked inside :meth:`run` — so this is a safety net for callers
        that abandon an engine mid-failure.  The engine remains usable
        afterwards.
        """
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            proc.join(timeout=5.0)
        self._procs = []
        shm.sweep_segments(self._shm_prefix)
