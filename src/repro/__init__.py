"""repro — reproduction of "Communication-Efficient String Sorting" (IPDPS 2020).

The package implements the paper's distributed string sorting algorithms
(hQuick, FKmerge, MS, MS-simple, PDMS, PDMS-Golomb) on top of a simulated
distributed-memory machine with exact communication-volume accounting, plus
the full sequential string-sorting substrate (MSD radix sort, multikey
quicksort, LCP insertion sort, LCP loser trees) they rely on.

Quickstart::

    from repro import dsort
    from repro.strings import dn_instance

    data = dn_instance(num_strings=20_000, dn=0.5, length=64, seed=1)
    result = dsort(data, algorithm="ms", num_pes=8, check=True)
    print(result.bytes_per_string(), result.modeled_time())
"""

from .dist import (
    ALGORITHMS,
    DSortResult,
    dsort,
    distribute_strings,
    ms_sort,
    pdms_sort,
    hquick_sort,
    fkmerge_sort,
    MSConfig,
    PDMSConfig,
)
from .mpi import Communicator, run_spmd
from .net import MachineModel, DEFAULT_MACHINE
from .sequential import sort_strings, sort_strings_with_lcp
from .strings import StringSet

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "DSortResult",
    "dsort",
    "distribute_strings",
    "ms_sort",
    "pdms_sort",
    "hquick_sort",
    "fkmerge_sort",
    "MSConfig",
    "PDMSConfig",
    "Communicator",
    "run_spmd",
    "MachineModel",
    "DEFAULT_MACHINE",
    "sort_strings",
    "sort_strings_with_lcp",
    "StringSet",
    "__version__",
]
