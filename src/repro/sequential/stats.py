"""Instrumentation counters for the sequential string sorters.

The paper's theory is stated in terms of the number of characters inspected
(lower bound ``Omega(D)``, or ``Omega(D + n log n)`` for comparison-based
sorters).  Every sequential sorter in this package optionally accepts a
:class:`CharStats` object and reports how many characters it looked at and how
many string comparisons it performed, so tests and ablation benchmarks can
verify that the implementations stay in the expected regime (e.g. the
LCP-aware merger inspects each distinguishing character O(1) times while a
naive merger rescans prefixes over and over).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CharStats"]


@dataclass
class CharStats:
    """Counts of work performed by a string sorting / merging routine."""

    chars_inspected: int = 0
    string_comparisons: int = 0
    bucket_passes: int = 0

    def add_chars(self, k: int) -> None:
        """Charge ``k`` inspected characters."""
        self.chars_inspected += k

    def add_comparison(self, chars: int = 0) -> None:
        """Charge one string comparison that inspected ``chars`` characters."""
        self.string_comparisons += 1
        self.chars_inspected += chars

    def merge(self, other: "CharStats") -> None:
        """Accumulate counters from a sub-computation."""
        self.chars_inspected += other.chars_inspected
        self.string_comparisons += other.string_comparisons
        self.bucket_passes += other.bucket_passes

    def reset(self) -> None:
        """Zero all counters (for reuse across phases)."""
        self.chars_inspected = 0
        self.string_comparisons = 0
        self.bucket_passes = 0
