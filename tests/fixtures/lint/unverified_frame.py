"""Seeded bug: route-frame payload consumed without ``verify()``.

The receive loop trusts ``frame.payload`` keyed by ``frame.origin``
without checking the frame's content seal first.  Expected finding:
``wire-unverified-frame``.
"""


def consume_frames(frames):
    received = {}
    for frame in frames:
        received[frame.origin] = frame.payload
    return received
