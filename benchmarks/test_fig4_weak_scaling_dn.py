"""Figure 4: weak scaling on the synthetic D/N inputs.

The paper's main experiment: five D/N ratios (0, 0.25, 0.5, 0.75, 1.0),
six algorithms, weak scaling over the machine size; the upper panel reports
running time, the lower panel bytes sent per string.

Reproduced here at reduced scale.  Expected shape (paper, Section VII-D):

* hQuick is outclassed by all string sorters;
* MS-simple consistently beats FKmerge and hQuick;
* MS improves on MS-simple, more so for larger D/N (longer LCPs);
* the PDMS variants give a further large improvement when D/N is not too
  large, and are roughly on par with (slightly behind) MS at D/N = 1;
* Golomb coding has little effect on running time and a modest effect on
  communication volume.
"""

from __future__ import annotations

import pytest

from conftest import print_experiment, scaled
from repro.bench.experiments import DEFAULT_ALGORITHMS
from repro.bench.harness import ExperimentResult, ExperimentRunner
from repro.strings.generators import dn_instance_for_pes

DN_VALUES = (0.0, 0.25, 0.5, 0.75, 1.0)
PE_COUNTS = (2, 4, 8)
STRINGS_PER_PE = scaled(700)
STRING_LENGTH = 160

_RESULTS: dict[float, ExperimentResult] = {}
# every simulated character stands for the corresponding share of the paper's
# 500k x 500-char per-PE input, so the modelled-time panel sits in the same
# bandwidth/latency regime as the original experiment (volumes are unaffected)
from repro.net import DEFAULT_MACHINE  # noqa: E402

_DATA_SCALE = (500_000 * 500) / (STRINGS_PER_PE * STRING_LENGTH)
_RUNNER = ExperimentRunner(machine=DEFAULT_MACHINE.with_data_scale(_DATA_SCALE), seed=0)


def _blocks(num_pes: int, dn: float):
    return dn_instance_for_pes(
        num_pes, STRINGS_PER_PE, dn, length=STRING_LENGTH, seed=17
    )


def _get_result(dn: float) -> ExperimentResult:
    if dn not in _RESULTS:
        _RESULTS[dn] = ExperimentResult(
            name=f"fig4-weak-dn-{dn:g}",
            description=(
                f"Weak scaling, D/N={dn:g}, {STRINGS_PER_PE} strings x "
                f"{STRING_LENGTH} chars per PE (paper: Fig. 4)"
            ),
        )
    return _RESULTS[dn]


@pytest.mark.parametrize("dn", DN_VALUES)
@pytest.mark.parametrize("algorithm", DEFAULT_ALGORITHMS)
def test_fig4_cell(benchmark, dn, algorithm):
    """Time one cell of Figure 4 (largest PE count) and record its volume."""
    result = _get_result(dn)
    # smaller PE counts are measured once outside the timed region so the
    # scaling series is complete without inflating benchmark time
    for p in PE_COUNTS[:-1]:
        cell = _RUNNER.run_cell(result.name, algorithm, p, f"dn={dn:g}", _blocks(p, dn))
        result.add(cell)

    p = PE_COUNTS[-1]
    blocks = _blocks(p, dn)
    cell = benchmark.pedantic(
        _RUNNER.run_cell,
        args=(result.name, algorithm, p, f"dn={dn:g}", blocks),
        rounds=1,
        iterations=1,
    )
    result.add(cell)
    benchmark.extra_info["bytes_per_string"] = round(cell.bytes_per_string, 2)
    benchmark.extra_info["modeled_time"] = cell.modeled_time
    benchmark.extra_info["dn"] = dn


@pytest.mark.parametrize("dn", DN_VALUES)
def test_fig4_render_and_shape(benchmark, dn):
    """Render the per-D/N panel and assert the paper's qualitative ordering."""
    result = _get_result(dn)
    benchmark(lambda: result.render("bytes_per_string"))
    print_experiment(result)

    p = PE_COUNTS[-1]

    def volume(alg):
        return result.filter(algorithm=alg, num_pes=p)[0].bytes_per_string

    # string sorters beat the atomic baseline on communication volume
    assert volume("ms") < volume("hquick")
    assert volume("ms-simple") < volume("hquick")
    # LCP compression helps, and helps more for large D/N (long LCPs)
    if dn >= 0.25:
        assert volume("ms") < volume("ms-simple")
    # prefix doubling wins when D/N is small
    if dn <= 0.5:
        assert volume("pdms") < volume("ms-simple")
        assert volume("pdms-golomb") <= volume("pdms") * 1.05
