"""Tests for the alpha-beta machine model (Section II collective costs)."""

import math

import pytest

from repro.net.cost_model import DEFAULT_MACHINE, MachineModel


class TestPointToPoint:
    def test_alpha_beta_formula(self):
        m = MachineModel(alpha=1e-6, beta=1e-9)
        assert m.p2p(0) == pytest.approx(1e-6)
        assert m.p2p(1000) == pytest.approx(1e-6 + 1e-6)

    def test_latency_dominates_small_messages(self):
        m = DEFAULT_MACHINE
        assert m.p2p(1) == pytest.approx(m.alpha, rel=1e-3)


class TestCollectives:
    def test_single_pe_collectives_are_free(self):
        m = DEFAULT_MACHINE
        assert m.broadcast(100, 1) == 0.0
        assert m.reduction(100, 1) == 0.0
        assert m.allgather(100, 1) == 0.0
        assert m.alltoall_direct(100, 1) == 0.0

    def test_broadcast_log_latency(self):
        m = MachineModel(alpha=1.0, beta=0.0)
        assert m.broadcast(0, 8) == pytest.approx(3.0)
        assert m.broadcast(0, 1024) == pytest.approx(10.0)

    def test_alltoall_direct_linear_latency(self):
        m = MachineModel(alpha=1.0, beta=0.0)
        assert m.alltoall_direct(0, 64) == pytest.approx(64.0)

    def test_alltoall_hypercube_tradeoff(self):
        """Hypercube routing: lower latency, log p higher volume cost."""
        m = MachineModel(alpha=1.0, beta=1.0)
        p = 256
        h = 10_000
        direct = m.alltoall_direct(h, p)
        hyper = m.alltoall_hypercube(h, p)
        # latency part smaller, bandwidth part larger
        assert math.log2(p) < p
        assert hyper == pytest.approx(math.log2(p) * (1 + h))
        assert direct == pytest.approx(p + h)

    def test_gather_volume_scales_with_p(self):
        m = MachineModel(alpha=0.0, beta=1.0)
        assert m.gather(10, 4) == pytest.approx(40)

    def test_allgather_volume(self):
        m = MachineModel(alpha=0.0, beta=1.0)
        assert m.allgather(10, 4) == pytest.approx(40)


class TestLocalWork:
    def test_local_work_terms(self):
        m = MachineModel(char_time=2.0, item_time=3.0)
        assert m.local_work(10, 5) == pytest.approx(20 + 15)

    def test_default_char_time_positive(self):
        assert DEFAULT_MACHINE.char_time > 0


class TestDataScale:
    def test_scaling_multiplies_bandwidth_and_work(self):
        m = MachineModel(alpha=1e-6, beta=1e-10, char_time=1e-9, item_time=1e-8)
        scaled = m.with_data_scale(100)
        assert scaled.alpha == m.alpha
        assert scaled.beta == pytest.approx(m.beta * 100)
        assert scaled.char_time == pytest.approx(m.char_time * 100)
        assert scaled.item_time == pytest.approx(m.item_time * 100)

    def test_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            DEFAULT_MACHINE.with_data_scale(0)

    def test_model_is_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_MACHINE.alpha = 1.0
