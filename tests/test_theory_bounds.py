"""Sanity checks of the paper's theoretical claims on the simulated machine.

These tests do not prove the theorems; they verify that the *measured*
communication volumes of the implementations stay within (generous constant
factors of) the asymptotic bounds of Theorems 1, 4, 5 and 6, and that the key
qualitative claims (what dominates what) hold on representative inputs.
"""

import math

import pytest

from repro.dist import dsort
from repro.strings.generators import dn_instance, random_strings, suffix_instance
from repro.strings.lcp import distinguishing_prefix_size


def _bits(nbytes: int) -> int:
    return 8 * nbytes


class TestTheorem4MSVolume:
    """MS: bottleneck communication volume O((N_hat + p * l_hat * log p) log sigma)."""

    def test_ms_volume_within_bound(self):
        p = 4
        data = dn_instance(1200, 0.5, length=60, seed=1)
        res = dsort(data, algorithm="ms-simple", num_pes=p)
        n_hat = max(len(b) for b in res.inputs_per_pe)
        chars_hat = max(sum(len(s) for s in b) for b in res.inputs_per_pe)
        l_hat = max(len(s) for s in data)
        log_sigma_bits = 8  # byte characters
        bound_bits = (chars_hat + p * l_hat * math.log2(p)) * log_sigma_bits
        measured_bits = _bits(max(res.report.bytes_sent_per_pe))
        # generous constant: headers, LCP values, sample traffic
        assert measured_bits <= 8 * bound_bits + 64 * n_hat

    def test_ms_volume_scales_with_input_not_with_p_squared(self):
        data = dn_instance(1600, 0.5, length=40, seed=2)
        res4 = dsort(data, algorithm="ms", num_pes=4)
        res8 = dsort(data, algorithm="ms", num_pes=8)
        # total communicated volume grows only mildly with p (more splitter
        # traffic), nowhere near quadratically
        assert res8.report.total_bytes_sent < 2.5 * res4.report.total_bytes_sent


class TestTheorem5PDMSVolume:
    """PDMS: (1+eps) D log sigma + O(n log p + p d_hat log sigma log p) bits."""

    @pytest.mark.parametrize("dn", [0.1, 0.5])
    def test_pdms_character_payload_close_to_d(self, dn):
        p = 4
        data = dn_instance(1000, dn, length=80, seed=3)
        d_total = distinguishing_prefix_size(data)
        res = dsort(data, algorithm="pdms", num_pes=p)
        # exchanged prefix characters are bounded by (1+eps)*D plus the start
        # guess per string; measure via the per-PE approximation totals
        approx_total = res.extra["approx_dist_total"]
        assert approx_total >= d_total  # never underestimates (safety)
        assert approx_total <= 2.2 * d_total + 16 * len(data)

    def test_pdms_beats_ms_when_d_much_smaller_than_n(self):
        data = suffix_instance(text_len=1500, alphabet_size=4, max_suffix_len=400, seed=4)
        ms = dsort(data, algorithm="ms", num_pes=4)
        pdms = dsort(data, algorithm="pdms", num_pes=4)
        assert pdms.report.total_bytes_sent < 0.35 * ms.report.total_bytes_sent

    def test_pdms_overhead_bounded_when_d_equals_n(self):
        """For D/N = 1 prefix doubling cannot help (Section VII-D): its only
        effect is the fingerprint traffic, a bounded number of bytes per
        string and round, on top of whatever MS sends."""
        data = dn_instance(800, 1.0, length=60, seed=5)
        ms = dsort(data, algorithm="ms", num_pes=4)
        pdms = dsort(data, algorithm="pdms", num_pes=4)
        overhead = pdms.report.total_bytes_sent - ms.report.total_bytes_sent
        rounds = max(1, pdms.extra["doubling_rounds"])
        # <= ~12 bytes per string per doubling round (fingerprint + verdict + headers)
        assert overhead <= 12 * len(data) * rounds
        # and the exchange itself does not regress: PDMS ships prefixes, never
        # more than the full strings MS ships
        assert (
            pdms.report.phase_bytes.get("exchange", 0)
            <= ms.report.phase_bytes.get("exchange", 0) * 1.1
        )


class TestTheorem6DuplicateDetection:
    """Prefix approximation: O(n_hat log p) bits of fingerprint traffic per round set."""

    def test_fingerprint_traffic_linear_in_strings(self):
        p = 4
        data = random_strings(2000, 20, 40, alphabet_size=4, seed=6)
        res = dsort(data, algorithm="pdms", num_pes=p)
        doubling_bytes = res.report.phase_bytes.get("prefix-doubling", 0)
        rounds = res.extra["doubling_rounds"]
        # per round and string: a fingerprint (<= 8 bytes) + a verdict bit +
        # headers; the bound below is ~17 bytes per string-round
        assert doubling_bytes <= 17 * len(data) * max(rounds, 1)

    def test_round_count_logarithmic_in_dist_length(self):
        data = dn_instance(600, 0.9, length=120, seed=7)
        res = dsort(data, algorithm="pdms", num_pes=4)
        # distinguishing prefixes ~ 110 chars; doubling from a small guess
        # needs O(log d_hat) rounds
        assert res.extra["doubling_rounds"] <= math.ceil(math.log2(130)) + 3


class TestTheorem1HQuick:
    """hQuick moves all data Theta(log p) times — far more than one-pass MS."""

    def test_hquick_volume_grows_with_log_p(self):
        data = random_strings(1200, 10, 20, seed=8)
        res2 = dsort(data, algorithm="hquick", num_pes=2)
        res8 = dsort(data, algorithm="hquick", num_pes=8)
        assert res8.report.total_bytes_sent > 1.5 * res2.report.total_bytes_sent

    def test_hquick_latency_polylogarithmic(self):
        """The modelled latency term of hQuick stays polylog while MS pays alpha*p."""
        from repro.net.cost_model import MachineModel

        latency_only = MachineModel(alpha=1.0, beta=0.0, char_time=0.0, item_time=0.0)
        data = random_strings(600, 5, 10, seed=9)
        hq = dsort(data, algorithm="hquick", num_pes=8)
        t = hq.report.modeled_comm_time(latency_only)
        p = 8
        # a handful of alltoalls/sendrecvs per dimension: well below alpha * p^2
        assert t < p * p
