"""Per-algorithm tests of the distributed sorters (hQuick, FKmerge, MS, PDMS).

Each algorithm is exercised through the ``dsort`` facade (which also runs the
full contract checker) on inputs chosen to hit its specific mechanisms, plus
direct SPMD-level tests of properties the facade does not expose.

The whole module runs once per registered execution engine (the
module-scoped ``spmd_engine`` fixture below scopes ``REPRO_ENGINE``), so
every algorithm property proved here is proved on real OS processes too;
engines the platform cannot run are skipped with the platform's reason.
"""

import pytest

from engine_conformance import engine_params, set_engine
from repro.dist import MSConfig, dsort, ms_sort
from repro.mpi import run_spmd
from repro.strings.checker import check_distributed_sort
from repro.strings.generators import (
    commoncrawl_like,
    dn_instance,
    dna_reads,
    duplicate_heavy,
    random_strings,
    suffix_instance,
)
from repro.strings.lcp import lcp_array

@pytest.fixture(scope="module", params=engine_params(), autouse=True)
def spmd_engine(request):
    """Run every test of this module on each registered execution engine."""
    with set_engine(request.param):
        yield request.param


SMALL_INPUTS = {
    "random": lambda: random_strings(900, 0, 18, seed=1),
    "dn25": lambda: dn_instance(700, 0.25, length=48, seed=2),
    "duplicates": lambda: duplicate_heavy(800, 25, 10, seed=3),
    "web": lambda: commoncrawl_like(600, seed=4),
}


class TestHQuick:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 8])
    def test_sorts_on_various_pe_counts(self, p):
        data = random_strings(500, 0, 15, seed=p)
        res = dsort(data, algorithm="hquick", num_pes=p, check=True)
        assert res.sorted_strings == sorted(data)

    def test_non_power_of_two_pes_leave_tail_ranks_empty(self):
        data = random_strings(600, 1, 10, seed=5)
        res = dsort(data, algorithm="hquick", num_pes=6, check=True)
        # only 2^floor(log2 6) = 4 PEs hold data
        assert all(len(res.outputs_per_pe[r]) == 0 for r in (4, 5))
        assert res.sorted_strings == sorted(data)

    def test_duplicate_heavy_input(self):
        data = duplicate_heavy(700, 10, 8, seed=6)
        res = dsort(data, algorithm="hquick", num_pes=4, check=True)
        assert res.sorted_strings == sorted(data)

    def test_produces_local_lcp_arrays(self):
        data = random_strings(300, 1, 12, seed=7)
        res = dsort(data, algorithm="hquick", num_pes=4, check=True)
        for out, lcps in zip(res.outputs_per_pe, res.lcps_per_pe):
            assert lcps == lcp_array(out)

    def test_moves_data_multiple_times(self):
        """hQuick's communication volume is much higher than MS's (Theorem 1)."""
        data = dn_instance(800, 0.5, length=60, seed=8)
        hq = dsort(data, algorithm="hquick", num_pes=8)
        ms = dsort(data, algorithm="ms", num_pes=8)
        assert hq.report.total_bytes_sent > 1.5 * ms.report.total_bytes_sent


class TestFKmerge:
    @pytest.mark.parametrize("name", sorted(SMALL_INPUTS))
    def test_sorts(self, name):
        data = SMALL_INPUTS[name]()
        res = dsort(data, algorithm="fkmerge", num_pes=4, check=True)
        assert res.sorted_strings == sorted(data)

    def test_handles_repeated_strings_unlike_original(self):
        """The paper reports the original FKmerge crashes on repeated strings;
        our reimplementation must handle them (documented deviation)."""
        data = duplicate_heavy(1000, 3, 6, seed=9)
        res = dsort(data, algorithm="fkmerge", num_pes=5, check=True)
        assert res.sorted_strings == sorted(data)

    def test_returns_no_lcp_array(self):
        data = random_strings(200, 1, 8, seed=10)
        res = dsort(data, algorithm="fkmerge", num_pes=3)
        assert all(h is None for h in res.lcps_per_pe)

    def test_centralised_sample_sort_structure(self):
        """FKmerge sorts its sample centrally: a gather to PE 0 followed by a
        broadcast of the splitters (the bottleneck the paper blames for its
        poor scalability)."""
        data = dn_instance(900, 0.2, length=40, seed=11)
        res = dsort(data, algorithm="fkmerge", num_pes=6)
        kinds = [
            c.kind for c in res.report.collectives if c.phase == "splitter-determination"
        ]
        assert "gather" in kinds and "bcast" in kinds
        assert res.report.phase_bytes["splitter-determination"] > 0


class TestMS:
    @pytest.mark.parametrize("name", sorted(SMALL_INPUTS))
    @pytest.mark.parametrize("algorithm", ["ms", "ms-simple"])
    def test_sorts(self, name, algorithm):
        data = SMALL_INPUTS[name]()
        res = dsort(data, algorithm=algorithm, num_pes=4, check=True)
        assert res.sorted_strings == sorted(data)

    @pytest.mark.parametrize("p", [1, 2, 5, 9])
    def test_various_pe_counts(self, p):
        data = dn_instance(600, 0.4, length=40, seed=12)
        res = dsort(data, algorithm="ms", num_pes=p, check=True)
        assert res.sorted_strings == sorted(data)

    def test_lcp_arrays_correct_per_pe(self):
        data = commoncrawl_like(500, seed=13)
        res = dsort(data, algorithm="ms", num_pes=4, check=True)
        for out, lcps in zip(res.outputs_per_pe, res.lcps_per_pe):
            assert lcps == lcp_array(out)

    def test_lcp_compression_reduces_volume_vs_simple(self):
        data = dn_instance(800, 0.8, length=64, seed=14)
        ms = dsort(data, algorithm="ms", num_pes=4)
        simple = dsort(data, algorithm="ms-simple", num_pes=4)
        assert ms.report.total_bytes_sent < simple.report.total_bytes_sent

    def test_character_sampling_option(self):
        data = dn_instance(700, 0.5, length=40, seed=15)
        res = dsort(data, algorithm="ms", num_pes=4, check=True, sampling="character")
        assert res.sorted_strings == sorted(data)

    def test_hquick_sample_sort_option(self):
        data = random_strings(700, 1, 14, seed=16)
        res = dsort(data, algorithm="ms", num_pes=4, check=True, sample_sort="hquick")
        assert res.sorted_strings == sorted(data)

    def test_alternative_local_sorter(self):
        data = random_strings(400, 1, 10, seed=17)
        res = dsort(
            data, algorithm="ms", num_pes=3, check=True, local_sorter="lcp_mergesort"
        )
        assert res.sorted_strings == sorted(data)

    def test_empty_rank_inputs(self):
        blocks = [[], random_strings(200, 1, 8, seed=18), [], [b"zz", b"aa"]]

        def prog(comm, local):
            return ms_sort(comm, local, MSConfig())

        results, _ = run_spmd(4, prog, args_per_rank=[(b,) for b in blocks])
        outputs = [r[0] for r in results]
        check_distributed_sort(blocks, outputs)

    def test_tiny_inputs_fewer_strings_than_pes(self):
        data = [b"b", b"a"]
        res = dsort(data, algorithm="ms", num_pes=6, check=True)
        assert res.sorted_strings == [b"a", b"b"]

    def test_oversampling_parameter(self):
        data = dn_instance(600, 0.3, length=40, seed=19)
        res = dsort(data, algorithm="ms", num_pes=4, check=True, oversampling=32)
        assert res.sorted_strings == sorted(data)


class TestPDMS:
    @pytest.mark.parametrize("algorithm", ["pdms", "pdms-golomb"])
    @pytest.mark.parametrize("name", sorted(SMALL_INPUTS))
    def test_prefix_contract(self, name, algorithm):
        data = SMALL_INPUTS[name]()
        res = dsort(data, algorithm=algorithm, num_pes=4, check=True)
        assert res.num_strings == len(data)

    def test_prefix_order_matches_full_string_order(self):
        """Sorting the origins' full strings must equal a direct sort."""
        data = dna_reads(600, seed=20)
        res = dsort(data, algorithm="pdms", num_pes=4, check=True)
        # reconstruct the full strings via the origin labels
        bucket_lists = _reconstruct_origin_buckets(res)
        reconstructed = []
        for pe_prefixes, pe_origins in zip(res.outputs_per_pe, res.origins_per_pe):
            for prefix, (src, pos) in zip(pe_prefixes, pe_origins):
                full = bucket_lists[src][pos]
                assert full.startswith(prefix)
                reconstructed.append(full)
        assert sorted(reconstructed) == sorted(data)
        # and the reconstructed sequence is sorted up to the transmitted prefixes
        for a, b in zip(reconstructed, reconstructed[1:]):
            assert a <= b or a.startswith(b) or b.startswith(a)

    def test_pdms_sends_fewer_bytes_when_dn_small(self):
        data = suffix_instance(text_len=1200, alphabet_size=4, max_suffix_len=300, seed=21)
        pdms = dsort(data, algorithm="pdms", num_pes=4)
        ms = dsort(data, algorithm="ms", num_pes=4)
        assert pdms.report.total_bytes_sent < 0.4 * ms.report.total_bytes_sent

    def test_golomb_variant_not_more_traffic(self):
        data = dna_reads(800, seed=22)
        plain = dsort(data, algorithm="pdms", num_pes=4)
        golomb = dsort(data, algorithm="pdms-golomb", num_pes=4)
        assert golomb.report.total_bytes_sent <= plain.report.total_bytes_sent

    def test_doubling_metadata_exposed(self):
        data = dna_reads(400, seed=23)
        res = dsort(data, algorithm="pdms", num_pes=4)
        assert res.extra["doubling_rounds"] >= 1
        assert res.extra["approx_dist_total"] >= len(data)

    def test_epsilon_option(self):
        data = dna_reads(400, seed=24)
        res = dsort(data, algorithm="pdms", num_pes=4, check=True, epsilon=0.5)
        assert res.num_strings == len(data)

    def test_character_sampling_uses_dist_weights(self):
        data = suffix_instance(text_len=700, alphabet_size=3, max_suffix_len=200, seed=25)
        res = dsort(
            data, algorithm="pdms", num_pes=4, check=True, sampling="character"
        )
        assert res.num_strings == len(data)

    def test_duplicate_only_input(self):
        data = [b"same-string"] * 300
        res = dsort(data, algorithm="pdms", num_pes=4, check=True)
        flat = [s for part in res.outputs_per_pe for s in part]
        assert all(s == b"same-string" for s in flat)
        assert len(flat) == 300


def _reconstruct_origin_buckets(res):
    """Rebuild, per source PE, the bucket-ordered full strings PDMS referenced.

    PDMS origins are (source PE, position in the concatenation of that PE's
    outgoing buckets), which equals the position in the PE's locally sorted
    array; reproducing that order here only needs the local sort.
    """
    buckets = []
    for block in res.inputs_per_pe:
        buckets.append(sorted(block))
    return buckets
