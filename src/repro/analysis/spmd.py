"""Pass 1 — SPMD correctness lint over the extracted comm graph.

The classic SPMD bugs this pass flags, each of which the runtime only
surfaces as a deadlock timeout (or silent byte drift) at scale:

``spmd-divergent-collective``
    A collective issued under a rank-dependent branch whose other arm has
    a *different* collective sequence.  Ranks taking different arms then
    enter different collectives — the canonical SPMD deadlock.  Branching
    on the rank is fine for point-to-point traffic (that is how pairs
    match); it is the *collective order* that must be rank-invariant.

``spmd-orphan-recv``
    A blocking ``recv`` (or posted ``irecv``) whose tag has no
    syntactically matching ``send``/``isend``/``sendrecv`` in any call
    closure that contains the receive.  Nothing can ever satisfy it.

``spmd-collective-mismatch``
    Rooted collectives within one function and accounting phase whose
    literal ``root`` arguments disagree (gather to 0, bcast from 1), or
    reductions whose explicit ``op`` literals disagree.  These almost
    always mean one call site was edited and its twin forgotten.

``spmd-self-send``
    Peer arithmetic that statically folds to the caller's own rank on a
    *blocking* primitive (``send``/``recv``/``sendrecv``).  The split-phase
    exchange legitimately self-posts ``isend``/``irecv`` pairs, so the
    non-blocking primitives are exempt.

Suppression: ``# lint: spmd-ok(<rule>)`` on the finding's line or the
line above (see docs/ANALYSIS.md).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple, Union

from .commgraph import PackageIndex, collective_sequence, transitive_closure
from .model import (
    COLLECTIVE_METHODS,
    REDUCING_METHODS,
    ROOTED_METHODS,
    Finding,
    FunctionSummary,
)

__all__ = ["run_spmd_pass"]

_BLOCKING_P2P = frozenset({"send", "recv", "sendrecv"})
_SENDING = frozenset({"send", "isend", "sendrecv"})
_RECEIVING = frozenset({"recv", "irecv"})

#: symbolic value of a peer expression: the caller's rank, a constant, or unknown
_RANK = "<rank>"
_Sym = Union[str, int, None]


def run_spmd_pass(index: PackageIndex) -> List[Finding]:
    """Run all four SPMD rules over every rank program in the index."""
    findings: List[Finding] = []
    for key, summary in sorted(index.functions.items()):
        if summary.comm_param is None:
            continue
        node = index.nodes[key]
        checker = _FunctionChecker(index, summary, node)
        findings.extend(checker.check())
    findings.extend(_orphan_recv_pass(index))
    return findings


# ---------------------------------------------------------------------------
# per-function rules (divergence, root/op mismatch, self-send)
# ---------------------------------------------------------------------------

class _FunctionChecker:
    """Walk one rank program's AST applying the per-function SPMD rules."""

    def __init__(
        self, index: PackageIndex, summary: FunctionSummary, node: ast.AST
    ) -> None:
        self.index = index
        self.summary = summary
        self.node = node
        self.comm = summary.comm_param
        self.aliases = _rank_aliases(node, self.comm)
        self.findings: List[Finding] = []

    def check(self) -> List[Finding]:
        """Apply divergence + self-send (one walk) and the mismatch rule."""
        self._seq_of_stmts(getattr(self.node, "body", []))
        self._check_mismatches()
        return self.findings

    # ------------------------------------------------------------ divergence
    def _seq_of_stmts(self, stmts: List[ast.stmt]) -> List[str]:
        """Collective sequence of a statement list, emitting findings."""
        seq: List[str] = []
        for stmt in stmts:
            seq.extend(self._seq_of_stmt(stmt))
        return seq

    def _seq_of_stmt(self, stmt: ast.stmt) -> List[str]:
        if isinstance(stmt, ast.If):
            head = self._seq_of_expr(stmt.test)
            body = self._seq_of_stmts(stmt.body)
            orelse = self._seq_of_stmts(stmt.orelse)
            if body != orelse and self._rank_dependent(stmt.test):
                self.findings.append(
                    Finding(
                        rule="spmd-divergent-collective",
                        path=self.summary.path,
                        line=stmt.lineno,
                        message=(
                            "collective sequence diverges across a "
                            f"rank-dependent branch: one arm issues {body or '[]'}, "
                            f"the other {orelse or '[]'} — ranks taking different "
                            "arms will enter different collectives (deadlock risk)"
                        ),
                        context=self.summary.key,
                    )
                )
            return head + (body if len(body) >= len(orelse) else orelse)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return (
                self._seq_of_expr(stmt.iter)
                + self._seq_of_stmts(stmt.body)
                + self._seq_of_stmts(stmt.orelse)
            )
        if isinstance(stmt, ast.While):
            return (
                self._seq_of_expr(stmt.test)
                + self._seq_of_stmts(stmt.body)
                + self._seq_of_stmts(stmt.orelse)
            )
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            seq: List[str] = []
            for item in stmt.items:
                seq.extend(self._seq_of_expr(item.context_expr))
            return seq + self._seq_of_stmts(stmt.body)
        if isinstance(stmt, ast.Try):
            seq = self._seq_of_stmts(stmt.body)
            for handler in stmt.handlers:
                seq.extend(self._seq_of_stmts(handler.body))
            seq.extend(self._seq_of_stmts(stmt.orelse))
            seq.extend(self._seq_of_stmts(stmt.finalbody))
            return seq
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return []  # nested defs are summarised separately
        seq = []
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                seq.extend(self._seq_of_expr(child))
        return seq

    def _seq_of_expr(self, expr: ast.expr) -> List[str]:
        """DFS-preorder collective sequence of one expression tree.

        Mirrors the extractor's traversal order so spliced callee
        sequences line up with :func:`collective_sequence`.  The self-send
        rule piggybacks on the same walk.
        """
        seq: List[str] = []
        if isinstance(expr, ast.Call):
            func = expr.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == self.comm
            ):
                if func.attr in COLLECTIVE_METHODS:
                    seq.append(func.attr)
                if func.attr in _BLOCKING_P2P:
                    self._check_self_send(func.attr, expr)
            else:
                target = self.index.resolve_call(self.summary.module, func)
                if target is not None:
                    seq.extend(collective_sequence(self.index, target))
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr) and not (
                isinstance(expr, ast.Call) and child is expr.func
            ):
                seq.extend(self._seq_of_expr(child))
            elif isinstance(child, (ast.keyword,)):
                seq.extend(self._seq_of_expr(child.value))
            elif isinstance(child, ast.comprehension):
                seq.extend(self._seq_of_expr(child.iter))
                for cond in child.ifs:
                    seq.extend(self._seq_of_expr(cond))
        return seq

    def _rank_dependent(self, expr: ast.expr) -> bool:
        """Whether a branch condition can differ across ranks."""
        for node in ast.walk(expr):
            if isinstance(node, ast.Attribute) and node.attr == "rank":
                return True
            if isinstance(node, ast.Name) and (
                node.id in self.aliases or node.id == "rank"
            ):
                return True
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "is_root"
            ):
                return True
        return False

    # ------------------------------------------------------------ self-send
    def _check_self_send(self, method: str, call: ast.Call) -> None:
        peer = _peer_argument(method, call)
        if peer is None:
            return
        if _fold(peer, self.aliases, self.comm) == _RANK:
            self.findings.append(
                Finding(
                    rule="spmd-self-send",
                    path=self.summary.path,
                    line=call.lineno,
                    message=(
                        f"blocking {method} addressed to the caller's own rank "
                        f"(peer expression {ast.unparse(peer)!r} folds to "
                        "comm.rank); a blocking self-post can never be satisfied"
                    ),
                    context=self.summary.key,
                )
            )

    # ------------------------------------------------------------ mismatches
    def _check_mismatches(self) -> None:
        roots: Dict[str, Tuple[str, int, str]] = {}
        ops: Dict[str, Tuple[str, int, str]] = {}
        for event in self.summary.events:
            if event.method in ROOTED_METHODS and _is_int_literal(event.root):
                seen = roots.get(event.phase)
                if seen is None:
                    roots[event.phase] = (event.root, event.line, event.method)
                elif seen[0] != event.root:
                    self.findings.append(
                        Finding(
                            rule="spmd-collective-mismatch",
                            path=self.summary.path,
                            line=event.line,
                            message=(
                                f"{event.method} uses root={event.root} but "
                                f"{seen[2]} at line {seen[1]} of the same phase "
                                f"({event.phase or 'unlabelled'}) uses "
                                f"root={seen[0]}; rooted collectives of one "
                                "phase must agree on the root"
                            ),
                            context=self.summary.key,
                        )
                    )
            if event.method in REDUCING_METHODS and event.op is not None:
                seen = ops.get(event.phase)
                if seen is None:
                    ops[event.phase] = (event.op, event.line, event.method)
                elif seen[0] != event.op:
                    self.findings.append(
                        Finding(
                            rule="spmd-collective-mismatch",
                            path=self.summary.path,
                            line=event.line,
                            message=(
                                f"{event.method} uses op={event.op} but "
                                f"{seen[2]} at line {seen[1]} of the same phase "
                                f"({event.phase or 'unlabelled'}) uses "
                                f"op={seen[0]}; mixed reduction operators in "
                                "one phase usually mean an edited twin call"
                            ),
                            context=self.summary.key,
                        )
                    )


def _peer_argument(method: str, call: ast.Call) -> Optional[ast.expr]:
    """The destination/source expression of a p2p call, if present."""
    position = {"send": 1, "recv": 0, "sendrecv": 1}[method]
    keyword_names = {"send": "dest", "recv": "source", "sendrecv": "peer"}
    for keyword in call.keywords:
        if keyword.arg == keyword_names[method]:
            return keyword.value
    if len(call.args) > position:
        return call.args[position]
    return None


def _rank_aliases(node: ast.AST, comm: Optional[str]) -> Set[str]:
    """Names assigned from ``comm.rank`` anywhere in the function body."""
    aliases: Set[str] = set()
    if comm is None:
        return aliases

    def is_rank_attr(expr: ast.expr) -> bool:
        return (
            isinstance(expr, ast.Attribute)
            and expr.attr == "rank"
            and isinstance(expr.value, ast.Name)
            and expr.value.id == comm
        )

    for stmt in ast.walk(node):
        if not isinstance(stmt, ast.Assign):
            continue
        for target in stmt.targets:
            if isinstance(target, ast.Name) and is_rank_attr(stmt.value):
                aliases.add(target.id)
            elif isinstance(target, ast.Tuple) and isinstance(stmt.value, ast.Tuple):
                for t, v in zip(target.elts, stmt.value.elts):
                    if isinstance(t, ast.Name) and is_rank_attr(v):
                        aliases.add(t.id)
    return aliases


def _fold(expr: ast.expr, aliases: Set[str], comm: Optional[str]) -> _Sym:
    """Constant-fold a peer expression over the symbol ``comm.rank``.

    Returns :data:`_RANK` when the expression is identically the caller's
    rank (through ``+0``/``-0``/``^0``/``*1``-style arithmetic), an ``int``
    for constants, and ``None`` for anything genuinely rank-varying.
    """
    if isinstance(expr, ast.Constant) and isinstance(expr.value, int):
        return expr.value
    if isinstance(expr, ast.Name) and (expr.id in aliases or expr.id == "rank"):
        return _RANK
    if (
        isinstance(expr, ast.Attribute)
        and expr.attr == "rank"
        and isinstance(expr.value, ast.Name)
        and expr.value.id == comm
    ):
        return _RANK
    if isinstance(expr, ast.BinOp):
        left = _fold(expr.left, aliases, comm)
        right = _fold(expr.right, aliases, comm)
        if isinstance(left, int) and isinstance(right, int):
            try:
                return _apply_binop(expr.op, left, right)
            except (ZeroDivisionError, ValueError, TypeError):
                return None
        if left == _RANK and isinstance(right, int):
            if right == 0 and isinstance(expr.op, (ast.Add, ast.Sub, ast.BitXor)):
                return _RANK
            if right == 1 and isinstance(expr.op, (ast.Mult, ast.FloorDiv)):
                return _RANK
        if right == _RANK and isinstance(left, int):
            if left == 0 and isinstance(expr.op, (ast.Add, ast.BitXor)):
                return _RANK
            if left == 1 and isinstance(expr.op, ast.Mult):
                return _RANK
    return None


def _apply_binop(op: ast.operator, left: int, right: int) -> Optional[int]:
    if isinstance(op, ast.Add):
        return left + right
    if isinstance(op, ast.Sub):
        return left - right
    if isinstance(op, ast.Mult):
        return left * right
    if isinstance(op, ast.FloorDiv):
        return left // right
    if isinstance(op, ast.Mod):
        return left % right
    if isinstance(op, ast.BitXor):
        return left ^ right
    return None


def _is_int_literal(text: Optional[str]) -> bool:
    if text is None:
        return False
    try:
        int(text)
    except ValueError:
        return False
    return True


# ---------------------------------------------------------------------------
# orphan receives (closure-level matching)
# ---------------------------------------------------------------------------

def _orphan_recv_pass(index: PackageIndex) -> List[Finding]:
    """Flag receives whose tag no send matches in any containing closure.

    A receive in helper ``H`` is fine when *some* function's call closure
    contains both the receive and a tag-matching send (the caller pairs
    them); it is orphaned only when no such closure exists anywhere in the
    scanned tree.
    """
    closures: Dict[str, Set[str]] = {
        key: set(transitive_closure(index, key)) for key in index.functions
    }
    send_tags: Dict[str, Set[str]] = {}
    for key, summary in index.functions.items():
        tags = {
            event.tag
            for event in summary.events
            if event.method in _SENDING and event.tag is not None
        }
        send_tags[key] = tags

    findings: List[Finding] = []
    for key, summary in sorted(index.functions.items()):
        for event in summary.events:
            if event.method not in _RECEIVING or event.tag is None:
                continue
            matched = False
            for owner, members in closures.items():
                if key not in members:
                    continue
                if any(event.tag in send_tags[member] for member in members):
                    matched = True
                    break
            if not matched:
                findings.append(
                    Finding(
                        rule="spmd-orphan-recv",
                        path=summary.path,
                        line=event.line,
                        message=(
                            f"{event.method} with tag {event.tag} has no "
                            "syntactically matching send/isend/sendrecv in any "
                            "call closure containing it; no rank path can ever "
                            "satisfy this receive"
                        ),
                        context=summary.key,
                    )
                )
    return findings
