"""Unit tests for repro.strings.lcp (LCP arrays, distinguishing prefixes, D/N)."""

import pytest

from repro.strings.lcp import (
    distinguishing_prefix_size,
    distinguishing_prefixes,
    dn_ratio,
    lcp,
    lcp_array,
    lcp_array_of_sorted,
    lcp_compress_lengths,
    merge_lcp_statistics,
    verify_lcp_array,
)


class TestLcp:
    @pytest.mark.parametrize(
        "a, b, expected",
        [
            (b"", b"", 0),
            (b"a", b"", 0),
            (b"abc", b"abc", 3),
            (b"abc", b"abd", 2),
            (b"abc", b"abcd", 3),
            (b"xyz", b"abc", 0),
            (b"aaaa", b"aaab", 3),
        ],
    )
    def test_pairs(self, a, b, expected):
        assert lcp(a, b) == expected
        assert lcp(b, a) == expected

    def test_long_identical_prefix(self):
        a = b"x" * 10000 + b"a"
        b_ = b"x" * 10000 + b"b"
        assert lcp(a, b_) == 10000


class TestLcpArray:
    def test_example_from_paper_figure2(self):
        # the sorted strings of Fig. 2 on PE 1 after step 1
        strings = [b"algae", b"alpha", b"alps", b"order"]
        assert lcp_array(strings) == [0, 2, 3, 0]

    def test_empty_and_singleton(self):
        assert lcp_array([]) == []
        assert lcp_array([b"abc"]) == [0]

    def test_unsorted_input_allowed(self):
        assert lcp_array([b"b", b"a", b"ab"]) == [0, 0, 1]

    def test_lcp_array_of_sorted_rejects_unsorted(self):
        with pytest.raises(ValueError):
            lcp_array_of_sorted([b"b", b"a"])

    def test_lcp_array_of_sorted_accepts_duplicates(self):
        assert lcp_array_of_sorted([b"a", b"a"]) == [0, 1]


class TestVerifyLcpArray:
    def test_accepts_correct(self):
        s = [b"algae", b"alpha", b"alps"]
        assert verify_lcp_array(s, [0, 2, 3])

    def test_rejects_wrong_value(self):
        s = [b"algae", b"alpha", b"alps"]
        assert not verify_lcp_array(s, [0, 2, 2])

    def test_rejects_wrong_length(self):
        assert not verify_lcp_array([b"a"], [0, 0])

    def test_rejects_nonzero_first_entry(self):
        assert not verify_lcp_array([b"a", b"ab"], [1, 1])

    def test_empty(self):
        assert verify_lcp_array([], [])


class TestDistinguishingPrefixes:
    def test_all_distinct_single_characters(self):
        # each string is distinguished by its first character
        assert distinguishing_prefixes([b"a", b"b", b"c"]) == [1, 1, 1]

    def test_shared_prefixes(self):
        # "abc" vs "abd": both need 3 characters; "x" needs 1
        out = distinguishing_prefixes([b"abc", b"abd", b"x"])
        assert out == [3, 3, 1]

    def test_exact_duplicates_need_full_length(self):
        out = distinguishing_prefixes([b"dup", b"dup", b"z"])
        assert out[0] == 3 and out[1] == 3 and out[2] == 1

    def test_prefix_of_other_string(self):
        # "ab" is a proper prefix of "abc": DIST capped at the string length
        out = distinguishing_prefixes([b"ab", b"abc"])
        assert out == [2, 3]

    def test_order_independent_of_input_order(self):
        a = distinguishing_prefixes([b"abc", b"abd", b"x"])
        b = distinguishing_prefixes([b"x", b"abd", b"abc"])
        assert a == [3, 3, 1]
        assert b == [1, 3, 3]

    def test_single_string(self):
        assert distinguishing_prefixes([b"hello"]) == [1]
        assert distinguishing_prefixes([b""]) == [0]

    def test_empty_input(self):
        assert distinguishing_prefixes([]) == []

    def test_total_d_is_lower_bounded_by_n(self):
        strings = [b"aa", b"ab", b"ba", b"bb"]
        d = distinguishing_prefix_size(strings)
        assert d == 2 + 2 + 2 + 2


class TestDnRatio:
    def test_zero_for_empty(self):
        assert dn_ratio([]) == 0.0

    def test_one_for_duplicates(self):
        # all strings identical: every character must be inspected
        assert dn_ratio([b"xyz", b"xyz"]) == 1.0

    def test_dn_instance_hits_target(self):
        from repro.strings.generators import dn_instance

        for target in (0.0, 0.5, 1.0):
            data = dn_instance(300, target, length=60, seed=1)
            assert dn_ratio(data) == pytest.approx(target, abs=0.12)

    def test_monotone_in_prefix_position(self):
        from repro.strings.generators import dn_instance

        low = dn_ratio(dn_instance(200, 0.1, length=60, seed=2))
        high = dn_ratio(dn_instance(200, 0.9, length=60, seed=2))
        assert low < high


class TestMergeLcpStatistics:
    def test_small_case(self):
        mean_lcp, frac = merge_lcp_statistics([b"abc", b"abd", b"xyz"])
        # sorted: abc, abd, xyz -> lcps 2, 0 -> mean 1.0; mean len 3
        assert mean_lcp == pytest.approx(1.0)
        assert frac == pytest.approx(1.0 / 3.0)

    def test_degenerate_inputs(self):
        assert merge_lcp_statistics([]) == (0.0, 0.0)
        assert merge_lcp_statistics([b"abc"]) == (0.0, 0.0)


class TestLcpCompressLengths:
    def test_counts_remaining_characters(self):
        strings = [b"algae", b"alpha", b"alps"]
        lcps = [0, 2, 3]
        # 5 + (5-2) + (4-3)
        assert lcp_compress_lengths(strings, lcps) == 9

    def test_clips_lcp_to_string_length(self):
        assert lcp_compress_lengths([b"ab"], [10]) == 0

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            lcp_compress_lengths([b"a"], [0, 0])
