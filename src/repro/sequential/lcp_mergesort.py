"""Binary LCP-merging (Ng & Kakehi) and LCP mergesort.

The LCP loser tree of Section II-B generalises this binary technique.  The
binary merger is kept as an independent implementation because

* it is used by the verification tooling as a second opinion on the loser
  tree (two independent implementations of the same contract),
* it powers :func:`lcp_mergesort`, an alternative local sorter with the
  comparison-based optimum of ``O(D + n log n)`` character work, and
* ablation benchmarks compare it against the K-way tree.

Merging rule for two sorted runs ``A`` and ``B`` whose fronts carry LCP
values ``la = LCP(A[i], last_output)`` and ``lb = LCP(B[j], last_output)``:

* ``la > lb``  →  ``A[i] < B[j]``; output ``A[i]``; ``LCP(A[i], B[j]) = lb``
  so ``lb`` stays valid relative to the new last output.
* ``la < lb``  →  symmetric.
* ``la == lb`` →  compare characters from offset ``la``; the loser's LCP
  relative to the new last output is the mismatch position.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .stats import CharStats

__all__ = ["lcp_merge", "lcp_mergesort"]


def _char_compare(
    a: bytes, b: bytes, start: int, stats: Optional[CharStats]
) -> Tuple[int, int]:
    limit = min(len(a), len(b))
    i = start
    while i < limit and a[i] == b[i]:
        i += 1
    if stats is not None:
        stats.add_comparison(i - start + (1 if i < limit else 0))
    if i == limit:
        return (len(a) - len(b), i)
    return (a[i] - b[i], i)


def lcp_merge(
    a: Sequence[bytes],
    a_lcps: Sequence[int],
    b: Sequence[bytes],
    b_lcps: Sequence[int],
    stats: Optional[CharStats] = None,
) -> Tuple[List[bytes], List[int]]:
    """Merge two sorted runs with LCP arrays into one sorted run + LCP array."""
    if len(a) != len(a_lcps) or len(b) != len(b_lcps):
        raise ValueError("runs and their LCP arrays must have matching lengths")

    out: List[bytes] = []
    out_lcps: List[int] = []
    i = j = 0
    # LCP of the current front of each run w.r.t. the last output string.
    la = 0
    lb = 0

    while i < len(a) and j < len(b):
        if la > lb:
            take_a = True
            boundary = lb  # LCP(a[i], b[j])
        elif lb > la:
            take_a = False
            boundary = la
        else:
            cmp, h = _char_compare(a[i], b[j], la, stats)
            take_a = cmp <= 0
            boundary = h

        if take_a:
            out.append(a[i])
            out_lcps.append(la)
            i += 1
            # the loser b[j] now relates to the new last output a[i-1]
            lb = boundary
            la = a_lcps[i] if i < len(a) else 0
        else:
            out.append(b[j])
            out_lcps.append(lb)
            j += 1
            la = boundary
            lb = b_lcps[j] if j < len(b) else 0

    while i < len(a):
        out.append(a[i])
        out_lcps.append(la)
        i += 1
        la = a_lcps[i] if i < len(a) else 0
    while j < len(b):
        out.append(b[j])
        out_lcps.append(lb)
        j += 1
        lb = b_lcps[j] if j < len(b) else 0

    if out_lcps:
        out_lcps[0] = 0
    return out, out_lcps


def lcp_mergesort(
    strings: Sequence[bytes], stats: Optional[CharStats] = None
) -> Tuple[List[bytes], List[int]]:
    """Bottom-up LCP mergesort; ``O(D + n log n)`` character work.

    Provided as an alternative local sorter (Section II-A notes that which
    sequential sorter is best depends on the input; the distributed layer can
    be configured to use any of them).
    """
    n = len(strings)
    if n == 0:
        return [], []
    runs: List[Tuple[List[bytes], List[int]]] = [([s], [0]) for s in strings]
    while len(runs) > 1:
        merged: List[Tuple[List[bytes], List[int]]] = []
        for k in range(0, len(runs) - 1, 2):
            ra, ha = runs[k]
            rb, hb = runs[k + 1]
            merged.append(lcp_merge(ra, ha, rb, hb, stats))
        if len(runs) % 2 == 1:
            merged.append(runs[-1])
        runs = merged
    out, lcps = runs[0]
    if lcps:
        lcps[0] = 0
    return out, lcps
